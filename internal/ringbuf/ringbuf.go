// Package ringbuf implements the RDMA ring buffer communication primitive
// used for Acuerdo's broadcast mode (paper §3.2) and by the Derecho and APUS
// baselines.
//
// A ring has a single sender and, per receiver, a registered remote buffer
// that the sender fills with one-sided RDMA writes. Receivers poll their
// current incoming tail until the next record's wire sequence number appears,
// then drain every available record at once — the paper's receiver-side
// batching model. Because RDMA reliable connections deliver writes in FIFO
// order, observing record k implies records < k have landed.
//
// Two wire formats are supported:
//
//   - single-write (Acuerdo): the record header and payload travel in one
//     RDMA write, so a small message costs one minimum-size wire frame;
//   - two-write (Derecho): the payload travels first with a zero sequence
//     word, then a second small write publishes the sequence number —
//     two verbs and two wire frames per message, which is why Derecho is
//     half as bandwidth-efficient for tiny messages (paper §4.1).
//
// Slot reuse is governed by the protocol through Release: Acuerdo releases a
// record once the receiver has accepted it, Derecho only once it is committed
// at all active nodes. When a receiver's ring is full the sender either
// queues to an unbounded per-receiver backlog (Acuerdo: "effectively
// infinite pending messages") or reports ErrRingFull so the protocol can
// stall (Derecho).
package ringbuf

import (
	"encoding/binary"
	"errors"
	"fmt"

	"acuerdo/internal/rdma"
)

const (
	headerSize = 12 // seq uint64 + len uint32
	wrapMarker = ^uint32(0)
)

var (
	// ErrRingFull is returned (backlog disabled) when the receiver has not
	// released enough space for the record.
	ErrRingFull = errors.New("ringbuf: ring full")
	// ErrTooLarge is returned for records bigger than half the ring.
	ErrTooLarge = errors.New("ringbuf: record exceeds ring capacity")
)

// Config sizes a ring.
type Config struct {
	// Bytes is the per-receiver ring size in bytes.
	Bytes int
	// TwoWrite selects the Derecho-style data+counter wire format.
	TwoWrite bool
	// Backlog enables unbounded sender-side queueing per receiver instead
	// of ErrRingFull.
	Backlog bool
}

// DefaultConfig returns a 1 MiB single-write ring with backlog enabled.
func DefaultConfig() Config {
	return Config{Bytes: 1 << 20, Backlog: true}
}

// Receiver is the receiving endpoint of a ring on one node. Poll from the
// owning node's event loop.
type Receiver struct {
	mr       *rdma.MR
	off      int
	wireSeq  uint64 // next expected wire sequence
	consumed uint64 // payload records consumed (for Release bookkeeping)

	creditQP *rdma.QP // back-channel to the sender's credit word
	creditMR *rdma.MR
	returned uint64
}

// ReturnCredits writes the consumed count back to the sender with an
// 8-byte RDMA write, letting it recycle ring space (the FaRM-style credit
// scheme). Protocols that release through higher-level state (Acuerdo's
// acceptance SST, Derecho's receipt counters) never need to call this.
func (r *Receiver) ReturnCredits() {
	if r.creditQP == nil || r.consumed == r.returned {
		return
	}
	r.returned = r.consumed
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], r.consumed)
	// A wedged credit channel is tolerable: credits are cumulative, so a
	// later write carries the same information.
	_, _ = r.creditQP.Write(r.creditMR, 0, b[:])
}

// Consumed returns the number of payload messages consumed so far; protocols
// report it back to the sender (directly or via an SST) to release ring
// space.
func (r *Receiver) Consumed() uint64 { return r.consumed }

// Poll drains available records, returning at most limit payloads
// (limit <= 0 means unlimited). Each call returns a receiver-side batch.
func (r *Receiver) Poll(limit int) [][]byte {
	var out [][]byte
	buf := r.mr.Buf
	for limit <= 0 || len(out) < limit {
		if len(buf)-r.off < headerSize {
			r.off = 0
			continue
		}
		seq := binary.LittleEndian.Uint64(buf[r.off:])
		if seq != r.wireSeq+1 {
			break // nothing new at the tail
		}
		ln := binary.LittleEndian.Uint32(buf[r.off+8:])
		if ln == wrapMarker {
			r.wireSeq++
			r.off = 0
			continue
		}
		if int(ln) > len(buf) {
			panic(fmt.Sprintf("ringbuf: corrupt record length %d", ln))
		}
		payload := make([]byte, ln)
		copy(payload, buf[r.off+headerSize:r.off+headerSize+int(ln)])
		out = append(out, payload)
		r.wireSeq++
		r.consumed++
		r.off += headerSize + int(ln)
	}
	return out
}

type inflightRec struct {
	msgIdx uint64
	bytes  int
}

type peerState struct {
	id       int
	qp       *rdma.QP
	ring     *rdma.MR
	creditMR *rdma.MR // local word the receiver writes its consumed count to

	woff          int
	wireSeq       uint64
	msgIdx        uint64 // logical send index (includes backlogged)
	emitIdx       uint64 // wire emission index; == msgIdx when backlog empty
	inflight      []inflightRec
	inflightBytes int
	backlog       [][]byte
}

// Sender is the sending endpoint of a ring: one per node, broadcasting to
// any number of receivers.
type Sender struct {
	cfg  Config
	node *rdma.Node
	peer map[int]*peerState
	ids  []int // stable peer order for Broadcast
}

// NewSender creates a sender owned by node.
func NewSender(node *rdma.Node, cfg Config) *Sender {
	if cfg.Bytes < 4*headerSize {
		panic("ringbuf: ring too small")
	}
	return &Sender{cfg: cfg, node: node, peer: make(map[int]*peerState)}
}

// AddPeer registers ring memory on recv and connects to it, returning the
// Receiver handle that recv's protocol instance polls. Peers are keyed by
// their fabric node ID.
func (s *Sender) AddPeer(recv *rdma.Node) *Receiver {
	mr := recv.RegisterMemory(s.cfg.Bytes)
	qp := s.node.Connect(recv, rdma.NewCQ())
	qp.SignalEvery = 1000 // the paper signals every thousand messages
	creditMR := s.node.RegisterMemory(8)
	creditQP := recv.Connect(s.node, rdma.NewCQ())
	creditQP.SignalEvery = 1024
	ps := &peerState{id: recv.ID, qp: qp, ring: mr, creditMR: creditMR}
	s.peer[recv.ID] = ps
	s.ids = append(s.ids, recv.ID)
	return &Receiver{mr: mr, creditQP: creditQP, creditMR: creditMR}
}

// pollCredits applies any credit returned by the receiver.
func (s *Sender) pollCredits(ps *peerState) {
	credit := binary.LittleEndian.Uint64(ps.creditMR.Buf)
	if credit > 0 {
		s.release(ps, credit)
	}
}

// Peers returns the registered peer node IDs in registration order.
func (s *Sender) Peers() []int { return s.ids }

// CanSend reports whether a record of the given payload size fits in peer
// to's ring right now (ignoring backlog).
func (s *Sender) CanSend(to, payloadLen int) bool {
	ps := s.peer[to]
	if ps == nil {
		return false
	}
	s.pollCredits(ps)
	if len(ps.backlog) > 0 {
		return false
	}
	rec := headerSize + payloadLen
	_, waste := s.placement(ps, rec)
	return ps.inflightBytes+waste+rec <= s.cfg.Bytes-headerSize
}

// placement computes where the next record of size rec lands and how many
// bytes a wrap would waste.
func (s *Sender) placement(ps *peerState, rec int) (off, waste int) {
	off = ps.woff
	if off+rec > s.cfg.Bytes {
		waste = s.cfg.Bytes - off
		off = 0
	}
	return off, waste
}

// Send writes payload into peer to's ring (unicast, send_to in the paper).
// It returns the 1-based payload message index on that peer's ring. With
// backlog enabled a full ring queues the message instead of failing.
func (s *Sender) Send(to int, payload []byte) (uint64, error) {
	ps := s.peer[to]
	if ps == nil {
		return 0, fmt.Errorf("ringbuf: unknown peer %d", to)
	}
	s.pollCredits(ps)
	rec := headerSize + len(payload)
	if rec > s.cfg.Bytes/2 {
		return 0, ErrTooLarge
	}
	_, waste := s.placement(ps, rec)
	full := ps.inflightBytes+waste+rec > s.cfg.Bytes-headerSize
	if len(ps.backlog) > 0 || full {
		// Preserve FIFO: never bypass queued messages.
		if s.cfg.Backlog {
			ps.msgIdx++
			ps.backlog = append(ps.backlog, append([]byte(nil), payload...))
			return ps.msgIdx, nil
		}
		return 0, ErrRingFull
	}
	ps.msgIdx++
	s.emit(ps, payload)
	return ps.msgIdx, nil
}

// emit performs the wire writes for one record; capacity must be checked.
func (s *Sender) emit(ps *peerState, payload []byte) {
	rec := headerSize + len(payload)
	off, waste := s.placement(ps, rec)
	if waste > 0 {
		if waste >= headerSize {
			// Explicit wrap marker.
			ps.wireSeq++
			var hdr [headerSize]byte
			binary.LittleEndian.PutUint64(hdr[:], ps.wireSeq)
			binary.LittleEndian.PutUint32(hdr[8:], wrapMarker)
			s.write(ps, ps.woff, hdr[:], false)
		}
		// A remainder < headerSize wraps implicitly on both sides.
		ps.woff = 0
	}

	ps.wireSeq++
	ps.emitIdx++
	buf := make([]byte, rec)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(payload)))
	copy(buf[headerSize:], payload)
	if s.cfg.TwoWrite {
		// Derecho style: payload first with a zero sequence word, then a
		// second write publishes the sequence (the "counter").
		s.write(ps, off, buf, false)
		var seqw [8]byte
		binary.LittleEndian.PutUint64(seqw[:], ps.wireSeq)
		s.write(ps, off, seqw[:], false)
	} else {
		binary.LittleEndian.PutUint64(buf[:8], ps.wireSeq)
		s.write(ps, off, buf, false)
	}
	ps.woff = off + rec
	ps.inflight = append(ps.inflight, inflightRec{msgIdx: ps.emitIdx, bytes: rec + waste})
	ps.inflightBytes += rec + waste
}

func (s *Sender) write(ps *peerState, off int, data []byte, signaled bool) {
	var err error
	if signaled {
		_, err = ps.qp.WriteSignaled(ps.ring, off, data)
	} else {
		_, err = ps.qp.Write(ps.ring, off, data)
	}
	if err != nil && err != rdma.ErrSendQueueFull {
		panic(fmt.Sprintf("ringbuf: write failed: %v", err))
	}
	// ErrSendQueueFull toward a crashed peer is tolerated: RC toward a dead
	// node wedges in reality too, and the protocol layer handles the peer's
	// failure through its own failure detector.
}

// Broadcast sends payload to every peer (send_to_all). It returns the
// per-sender message index (identical across peers when the ring is used
// broadcast-only, as in Acuerdo's normal mode).
func (s *Sender) Broadcast(payload []byte) (uint64, error) {
	var idx uint64
	for _, id := range s.ids {
		i, err := s.Send(id, payload)
		if err != nil {
			return 0, err
		}
		idx = i
	}
	return idx, nil
}

// Release records that peer to has consumed payload messages up to and
// including index upto, freeing ring space and flushing backlog.
func (s *Sender) Release(to int, upto uint64) {
	ps := s.peer[to]
	if ps == nil {
		return
	}
	s.release(ps, upto)
}

func (s *Sender) release(ps *peerState, upto uint64) {
	for len(ps.inflight) > 0 && ps.inflight[0].msgIdx <= upto {
		ps.inflightBytes -= ps.inflight[0].bytes
		ps.inflight = ps.inflight[1:]
	}
	// Flush backlog into freed space, preserving order.
	for len(ps.backlog) > 0 {
		payload := ps.backlog[0]
		rec := headerSize + len(payload)
		_, waste := s.placement(ps, rec)
		if ps.inflightBytes+waste+rec > s.cfg.Bytes-headerSize {
			break
		}
		ps.backlog = ps.backlog[1:]
		s.emit(ps, payload)
	}
}

// Backlogged reports how many messages are queued for peer to.
func (s *Sender) Backlogged(to int) int {
	if ps := s.peer[to]; ps != nil {
		return len(ps.backlog)
	}
	return 0
}

// InFlight reports unreleased ring bytes toward peer to.
func (s *Sender) InFlight(to int) int {
	if ps := s.peer[to]; ps != nil {
		return ps.inflightBytes
	}
	return 0
}
