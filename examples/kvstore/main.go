// KVStore reproduces the paper's application use case (§4.3): a replicated
// hash table where update commands travel through Acuerdo and reads are
// served directly from any replica, bypassing the broadcast instance.
// It then pushes a burst of YCSB-load traffic (zipfian .99 keys, 100%
// writes) through the table and reports throughput.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"time"

	"acuerdo/internal/acuerdo"
	"acuerdo/internal/kvstore"
	"acuerdo/internal/metrics"
	"acuerdo/internal/rdma"
	"acuerdo/internal/simnet"
	"acuerdo/internal/ycsb"
)

func main() {
	const replicas = 3
	sim := simnet.New(11)
	fabric := rdma.NewFabric(sim, rdma.DefaultParams())
	cluster := acuerdo.NewCluster(sim, fabric, acuerdo.DefaultClusterConfig(replicas))

	table := kvstore.NewReplicated(cluster, replicas)
	cluster.OnDeliver = func(replica int, hdr acuerdo.MsgHdr, payload []byte) {
		if err := table.ApplyAt(replica, payload); err != nil {
			panic(err)
		}
	}
	cluster.Start()
	sim.RunFor(20 * time.Millisecond)

	// Replicated updates.
	table.Set("user:1", []byte("ada"), nil)
	table.Set("user:2", []byte("grace"), nil)
	table.Set("user:1", []byte("ada lovelace"), nil)
	table.Delete("user:2", nil)
	sim.RunFor(5 * time.Millisecond)

	// Reads hit any replica directly — no broadcast round.
	for i := 0; i < replicas; i++ {
		v, _ := table.Get(i, "user:1")
		_, gone := table.Get(i, "user:2")
		fmt.Printf("replica %d: user:1=%q user:2 present=%v\n", i, v, gone)
	}

	// YCSB-load burst: 5000 writes, zipfian keys.
	fmt.Println("\nrunning YCSB-load burst (5000 writes, zipfian .99)...")
	w := ycsb.NewWorkload(10000, 100, 0.99, 11)
	committed := 0
	start := sim.Now()
	const window = 64
	var submit func()
	submit = func() {
		if committed >= 5000 {
			return
		}
		key, value := w.NextOp()
		table.Set(key, value, func() {
			committed++
			submit()
		})
	}
	for i := 0; i < window; i++ {
		submit()
	}
	for committed < 5000 {
		sim.RunFor(time.Millisecond)
	}
	elapsed := sim.Now().Sub(start)
	fmt.Printf("5000 writes in %v simulated = %.0f ops/sec\n",
		elapsed, metrics.Throughput(committed, elapsed))
	for i := 0; i < replicas; i++ {
		fmt.Printf("replica %d holds %d keys, applied %d ops\n",
			i, table.Stores[i].Len(), table.Stores[i].Applied)
	}
}
