package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"acuerdo/internal/abcast"
	"acuerdo/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// tracedRun drives a tiny 3-node Acuerdo instance with tracing on and
// returns the tracer plus the measured load point.
func tracedRun(t *testing.T, ring int) (*trace.Tracer, abcast.LoadResult) {
	t.Helper()
	tr := trace.New(ring)
	inst := NewInstance(Acuerdo, 3, 1, Options{Tracer: tr})
	res := abcast.RunClosedLoop(inst.Sim, inst.Sys, abcast.LoadConfig{
		Window:  4,
		MsgSize: 16,
		Warmup:  500 * time.Microsecond,
		Measure: 2 * time.Millisecond,
	})
	return tr, res
}

// TestDecompositionSumsToEndToEnd is the acceptance bar for the latency
// report: the per-stage shares must sum to the measured end-to-end client
// latency within 1% (integer-division rounding allows a few ns of slack).
func TestDecompositionSumsToEndToEnd(t *testing.T) {
	_, res := tracedRun(t, trace.DefaultRing)
	d := res.Decomp
	if d == nil || d.Messages == 0 {
		t.Fatal("no decomposition from traced run")
	}
	if d.Partial != 0 {
		t.Fatalf("%d acked messages missing markers", d.Partial)
	}
	sum := d.PostNS + d.WireNS + d.ProtoNS + d.AckNS
	if sum != d.TotalNS {
		t.Fatalf("segments sum to %d ns, total is %d ns", sum, d.TotalNS)
	}
	// The decomposition covers exactly the histogram's sample set, so the
	// mean total must match the histogram mean up to rounding.
	mean := res.Latency.Mean()
	diff := d.Total() - mean
	if diff < 0 {
		diff = -diff
	}
	if tol := mean / 100; diff > tol {
		t.Fatalf("decomposition total %v vs histogram mean %v (diff %v > 1%%)", d.Total(), mean, diff)
	}
	if d.Messages != res.Latency.N() {
		t.Fatalf("decomposed %d messages, histogram has %d samples", d.Messages, res.Latency.N())
	}
}

// TestTracedRunDeterminism re-runs the same traced workload and demands an
// identical event stream, byte-identical Chrome export included.
func TestTracedRunDeterminism(t *testing.T) {
	tr1, _ := tracedRun(t, 1024)
	tr2, _ := tracedRun(t, 1024)
	if tr1.Fingerprint() != tr2.Fingerprint() || tr1.Emitted() != tr2.Emitted() {
		t.Fatalf("traced runs diverged: %016x/%d vs %016x/%d",
			tr1.Fingerprint(), tr1.Emitted(), tr2.Fingerprint(), tr2.Emitted())
	}
	var b1, b2 bytes.Buffer
	if err := tr1.WriteChrome(&b1); err != nil {
		t.Fatal(err)
	}
	if err := tr2.WriteChrome(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("Chrome exports differ between same-seed runs")
	}
}

// TestChromeGolden pins the exact Chrome-trace bytes of a tiny seeded run.
// Any change to event emission sites, ordering, or formatting shows up as a
// golden diff; regenerate deliberately with `go test ./internal/bench
// -run TestChromeGolden -update`.
func TestChromeGolden(t *testing.T) {
	tr, _ := tracedRun(t, 256)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export holds no events")
	}

	golden := filepath.Join("testdata", "acuerdo_trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace differs from golden (%d vs %d bytes); regenerate with -update if the change is intended",
			buf.Len(), len(want))
	}
}
