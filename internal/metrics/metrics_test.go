package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for _, d := range []time.Duration{30, 10, 20} {
		h.Add(d)
	}
	if h.N() != 3 || h.Mean() != 20 || h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("stats: n=%d mean=%v min=%v max=%v", h.N(), h.Mean(), h.Min(), h.Max())
	}
	if h.Percentile(50) != 20 {
		t.Fatalf("p50 = %v", h.Percentile(50))
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Histogram
		for _, v := range vals {
			h.Add(time.Duration(v))
		}
		prev := time.Duration(-1)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	var raw []time.Duration
	for i := 0; i < 1000; i++ {
		d := time.Duration(rng.Intn(100000))
		h.Add(d)
		raw = append(raw, d)
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	if h.Min() != raw[0] || h.Max() != raw[999] {
		t.Fatal("min/max mismatch")
	}
	if got, want := h.Percentile(100), raw[999]; got != want {
		t.Fatalf("p100 = %v, want %v", got, want)
	}
}

func TestHistogramAddAfterSort(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.Percentile(50) // forces sort
	h.Add(5)
	if h.Min() != 5 {
		t.Fatalf("min = %v after post-sort add", h.Min())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Add(10)
	h.Reset()
	if h.N() != 0 || h.Mean() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestThroughputHelpers(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %f", got)
	}
	if got := MBPerSec(2e6, time.Second); got != 2 {
		t.Fatalf("MBPerSec = %f", got)
	}
	if Throughput(5, 0) != 0 || MBPerSec(5, 0) != 0 {
		t.Fatal("zero-duration should yield 0")
	}
}

func TestHistogramPercentileEdgeCases(t *testing.T) {
	var h Histogram
	if h.Percentile(100) != 0 {
		t.Fatal("p100 of empty histogram should be 0")
	}
	h.Add(42)
	for _, p := range []float64{1, 50, 100} {
		if got := h.Percentile(p); got != 42 {
			t.Fatalf("n=1 p%.0f = %v, want 42", p, got)
		}
	}
	h.Add(142)
	if got := h.Percentile(100); got != 142 {
		t.Fatalf("p100 = %v, want max", got)
	}
	// Linear interpolation between the two ranks: p50 is halfway.
	if got := h.Percentile(50); got != 92 {
		t.Fatalf("p50 = %v, want interpolated 92", got)
	}
	if got := h.Percentile(75); got != 117 {
		t.Fatalf("p75 = %v, want interpolated 117", got)
	}
}

func TestHistogramSamplesInsertionOrder(t *testing.T) {
	var h Histogram
	in := []time.Duration{30, 10, 20}
	for _, d := range in {
		h.Add(d)
	}
	// Order statistics must not disturb the insertion-ordered samples: the
	// seed-replay harness fingerprints this sequence.
	_ = h.Percentile(99)
	_ = h.Min()
	_ = h.Max()
	got := h.Samples()
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("samples reordered: %v, want %v", got, in)
		}
	}
	// And the returned slice is a copy.
	got[0] = 999
	if h.Samples()[0] != 30 {
		t.Fatal("Samples() aliases internal state")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i))
	}
	qs := h.Quantiles(50, 90, 99)
	want := []time.Duration{h.Percentile(50), h.Percentile(90), h.Percentile(99)}
	for i := range qs {
		if qs[i] != want[i] {
			t.Fatalf("Quantiles[%d] = %v, want %v", i, qs[i], want[i])
		}
	}
}

func TestHistogramExport(t *testing.T) {
	var h Histogram
	if s := h.Export(); s.N != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty export: %+v", s)
	}
	h.Add(500 * time.Nanosecond) // below the first bucket bound
	h.Add(3 * time.Microsecond)
	h.Add(40 * time.Microsecond)
	h.Add(2 * time.Second) // beyond the last fixed bound
	s := h.Export()
	if s.N != 4 || s.Min != 500*time.Nanosecond || s.Max != 2*time.Second {
		t.Fatalf("export summary: %+v", s)
	}
	if s.P50 != h.Percentile(50) || s.P999 != h.Percentile(99.9) {
		t.Fatal("export quantiles disagree with Percentile")
	}
	counts := map[time.Duration]int{}
	for _, b := range s.Buckets {
		counts[b.Le] = b.Count
	}
	if counts[time.Microsecond] != 1 || counts[5*time.Microsecond] != 2 ||
		counts[50*time.Microsecond] != 3 || counts[time.Second] != 3 {
		t.Fatalf("bucket counts: %+v", s.Buckets)
	}
	// The final bucket is bounded by the observed max so it reaches N.
	last := s.Buckets[len(s.Buckets)-1]
	if last.Le != s.Max || last.Count != s.N {
		t.Fatalf("final bucket: %+v", last)
	}
	// Cumulative counts are monotone.
	prev := 0
	for _, b := range s.Buckets {
		if b.Count < prev {
			t.Fatalf("non-monotone buckets: %+v", s.Buckets)
		}
		prev = b.Count
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Add(time.Microsecond)
	if s := h.String(); s == "" {
		t.Fatal("empty string")
	}
}

// TestHistogramExportSubSecond pins the bucket ladder for the common case:
// every sample inside the fixed bounds. Export used to append a final
// {Le: Max, Count: N} bucket unconditionally, which put a bound below the
// earlier ones (Max was e.g. 40µs after a 1s fixed bound) and broke the
// cumulative ladder's monotonicity in Le; now the observed-max bucket
// appears only when samples land beyond the fixed ladder.
func TestHistogramExportSubSecond(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{
		700 * time.Nanosecond,
		3 * time.Microsecond,
		8 * time.Microsecond,
		40 * time.Microsecond,
		900 * time.Microsecond,
	} {
		h.Add(d)
	}
	s := h.Export()
	if len(s.Buckets) != len(DefaultBuckets) {
		t.Fatalf("got %d buckets, want the %d fixed bounds only", len(s.Buckets), len(DefaultBuckets))
	}
	for i, b := range s.Buckets {
		if b.Le != DefaultBuckets[i] {
			t.Fatalf("bucket %d bound %v, want %v", i, b.Le, DefaultBuckets[i])
		}
		if i > 0 && s.Buckets[i-1].Le >= b.Le {
			t.Fatalf("bucket bounds not strictly increasing: %+v", s.Buckets)
		}
		if i > 0 && s.Buckets[i-1].Count > b.Count {
			t.Fatalf("bucket counts not monotone: %+v", s.Buckets)
		}
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.Count != s.N {
		t.Fatalf("ladder tops out at %d, want N=%d", last.Count, s.N)
	}
	// And the over-ladder case keeps its closing max bucket.
	h.Add(2 * time.Second)
	s = h.Export()
	if len(s.Buckets) != len(DefaultBuckets)+1 {
		t.Fatalf("got %d buckets, want fixed bounds plus the max bucket", len(s.Buckets))
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.Le != 2*time.Second || last.Count != s.N {
		t.Fatalf("closing bucket %+v, want {2s, %d}", last, s.N)
	}
}

// TestHistogramPercentileInterpolation pins the interpolated values the
// doc promises: rank p/100*(N-1), linear between bracketing order
// statistics (numpy's default definition).
func TestHistogramPercentileInterpolation(t *testing.T) {
	var h Histogram
	// Samples 10,20,30,40ms: N-1 = 3, so p maps to rank 3p/100.
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond} {
		h.Add(d)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{25, 17500 * time.Microsecond},     // rank 0.75: 10ms + 0.75*10ms
		{50, 25 * time.Millisecond},        // rank 1.5: midpoint of 20ms,30ms
		{75, 32500 * time.Microsecond},     // rank 2.25: 30ms + 0.25*10ms
		{90, 37 * time.Millisecond},        // rank 2.7: 30ms + 0.7*10ms
		{100, 40 * time.Millisecond},       // exact top rank, no interpolation
		{100.0 / 3, 20 * time.Millisecond}, // rank exactly 1.0
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Single sample: every percentile is that sample.
	var one Histogram
	one.Add(7 * time.Millisecond)
	if one.Percentile(50) != 7*time.Millisecond || one.Percentile(99.9) != 7*time.Millisecond {
		t.Fatal("single-sample percentiles must return the sample")
	}
}
